package topodb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestSnapshotPinsGeneration: a snapshot keeps answering from its pinned
// state after arbitrary mutations, while fresh snapshots see the new one.
func TestSnapshotPinsGeneration(t *testing.T) {
	db := buildFig1c(t)
	snap := db.Snapshot()
	gen := snap.Gen()
	if got := snap.Names(); len(got) != 2 {
		t.Fatalf("names = %v", got)
	}

	if err := db.AddRect("C", 10, 10, 14, 14); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still has two regions and fails on C.
	if snap.Gen() != gen || len(snap.Names()) != 2 {
		t.Fatalf("snapshot moved: gen %d->%d names %v", gen, snap.Gen(), snap.Names())
	}
	if _, err := snap.Relate("A", "C"); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("old snapshot Relate(A, C): %v, want ErrNoRegion", err)
	}
	if _, err := snap.Query(context.Background(), "disjoint(A, C)"); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("old snapshot Query on C: %v, want ErrNoRegion", err)
	}

	// A fresh snapshot sees C; the old one's relations stay two-region.
	fresh := db.Snapshot()
	if fresh.Gen() == gen {
		t.Fatal("generation did not move")
	}
	if rel, err := fresh.Relate("A", "C"); err != nil || rel != Disjoint {
		t.Fatalf("fresh Relate(A, C) = %v, %v", rel, err)
	}
	oldRels, err := snap.AllRelations()
	if err != nil {
		t.Fatal(err)
	}
	if len(oldRels) != 2 { // ordered pairs over {A, B}
		t.Fatalf("old snapshot has %d relation rows, want 2", len(oldRels))
	}
}

// TestSnapshotSharesArtifacts: snapshots of the same generation share one
// artifact cache; a mutation starts a fresh one.
func TestSnapshotSharesArtifacts(t *testing.T) {
	db := buildFig1c(t)
	s1, s2 := db.Snapshot(), db.Snapshot()
	iv1, err := s1.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := s2.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if iv1.Internal() != iv2.Internal() {
		t.Fatal("same-generation snapshots rebuilt the invariant")
	}
	if err := db.AddRect("C", 10, 10, 14, 14); err != nil {
		t.Fatal(err)
	}
	iv3, err := db.Snapshot().Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if iv3.Internal() == iv1.Internal() {
		t.Fatal("post-mutation snapshot returned the stale invariant")
	}
}

// TestSnapshotEquivalences: the snapshot-level equivalence tests agree
// with the instance-level wrappers.
func TestSnapshotEquivalences(t *testing.T) {
	a := buildFig1c(t)
	b := buildFig1c(t)
	eq, err := a.Snapshot().Equivalent(b.Snapshot())
	if err != nil || !eq {
		t.Fatalf("identical instances: Equivalent = %v, %v", eq, err)
	}
	fi, err := a.Snapshot().FourIntersectionEquivalent(b.Snapshot())
	if err != nil || !fi {
		t.Fatalf("identical instances: FourIntersectionEquivalent = %v, %v", fi, err)
	}
	seq, err := a.Snapshot().SEquivalent(b.Snapshot())
	if err != nil || !seq {
		t.Fatalf("identical instances: SEquivalent = %v, %v", seq, err)
	}
	// Self-equivalence on one snapshot must not deadlock or rebuild.
	self, err := a.Snapshot().Equivalent(a.Snapshot())
	if err != nil || !self {
		t.Fatalf("self equivalence = %v, %v", self, err)
	}
}

// TestSnapshotIsolationUnderApply is the -race hammer: reader goroutines
// each pin a snapshot and run long reads (including a slow refined
// Select) while a writer commits Apply batches. Every reader must observe
// exactly its pinned generation: stable names, a relation table over
// those names only, and one shared invariant per snapshot.
func TestSnapshotIsolationUnderApply(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	db := NewInstance()
	if err := db.Apply(func(tx *Txn) error {
		tx.AddRect("A", 0, 0, 4, 4)
		tx.AddRect("B", 2, 2, 6, 6)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const writerBatches = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: batched mutations, two regions per generation
		defer wg.Done()
		defer close(stop)
		for i := 0; i < writerBatches; i++ {
			x := int64(20 + 10*i)
			err := db.Apply(func(tx *Txn) error {
				tx.AddRect(fmt.Sprintf("W%02da", i), x, 0, x+4, 4)
				tx.AddRect(fmt.Sprintf("W%02db", i), x+2, 2, x+6, 6)
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					if round > 0 {
						return
					}
					// Run at least one full round even if the writer
					// finished first.
				default:
				}
				s := db.Snapshot()
				gen := s.Gen()
				names := s.Names()
				nameSet := make(map[string]bool, len(names))
				for _, n := range names {
					nameSet[n] = true
				}
				if len(names)%2 != 0 {
					t.Errorf("snapshot caught a torn Apply: odd region count %d", len(names))
					return
				}

				// Slow read: a refined Select walks a finer universe.
				res, err := s.SelectRefined(context.Background(), "some cell r: subset(r, A)", 2)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Sort != "cell" || len(res.Cells) == 0 {
					t.Errorf("refined select on A: %+v", res)
					return
				}

				// The relation table covers exactly the pinned names.
				rels, err := s.AllRelations()
				if err != nil {
					t.Error(err)
					return
				}
				n := len(names)
				if len(rels) != n*(n-1) {
					t.Errorf("gen %d: %d relation rows for %d names", gen, len(rels), n)
					return
				}
				for k := range rels {
					if !nameSet[k[0]] || !nameSet[k[1]] {
						t.Errorf("gen %d: relation row %v outside snapshot names", gen, k)
						return
					}
				}

				// Same-generation reads are consistent throughout.
				iv1, err := s.Invariant()
				if err != nil {
					t.Error(err)
					return
				}
				iv2, err := s.Invariant()
				if err != nil {
					t.Error(err)
					return
				}
				if iv1.Internal() != iv2.Internal() {
					t.Error("one snapshot produced two invariants")
					return
				}
				if s.Gen() != gen || len(s.Names()) != len(names) {
					t.Errorf("snapshot drifted from gen %d", gen)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Final state: every Apply batch is visible.
	final := db.Snapshot()
	if got, want := len(final.Names()), 2+2*writerBatches; got != want {
		t.Fatalf("final region count = %d, want %d", got, want)
	}
}

// TestQueryBatchCanceledTyped: cancellation is typed per query, not just
// on the aggregate, so callers (and topoquery's exit-code mapping) can
// classify each failure.
func TestQueryBatchCanceledTyped(t *testing.T) {
	db := buildFig1c(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.Snapshot().QueryBatch(ctx, []string{"overlap(A, B)", "meet(A, B)"})
	if err == nil {
		t.Fatal("expected a batch error")
	}
	var be *BatchError
	if !errors.As(err, &be) || len(be.Errs) != 2 {
		t.Fatalf("canceled batch error: %v", err)
	}
	for _, qe := range be.Errs {
		if !errors.Is(qe, ErrCanceled) {
			t.Errorf("per-query error %v should match ErrCanceled", qe)
		}
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate %v should match ErrCanceled and context.Canceled", err)
	}
}

// TestSnapshotQueryCanceled: a canceled context surfaces as ErrCanceled
// (and still matches the context sentinel underneath).
func TestSnapshotQueryCanceled(t *testing.T) {
	db := buildFig1c(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.Snapshot().Query(ctx, "some cell r: subset(r, A)")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled query: %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: %v should keep context.Canceled in the chain", err)
	}
}
