package topodb

import (
	"errors"
	"testing"
)

func TestApplyCommitsAtomically(t *testing.T) {
	db := NewInstance()
	err := db.Apply(func(tx *Txn) error {
		if err := tx.AddRect("A", 0, 0, 4, 4); err != nil {
			return err
		}
		if err := tx.AddPolygon("B", 10, 0, 14, 0, 12, 4); err != nil {
			return err
		}
		if err := tx.AddCircle("C", 20, 2, 1, 12); err != nil {
			return err
		}
		if err := tx.AddRectUnion("D", [4]int64{30, 0, 32, 4}, [4]int64{32, 0, 34, 2}); err != nil {
			return err
		}
		if tx.Len() != 4 {
			t.Errorf("Len = %d mid-transaction", tx.Len())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	if len(names) != 4 {
		t.Fatalf("names after Apply = %v", names)
	}
	if rel, err := db.Relate("A", "B"); err != nil || rel != Disjoint {
		t.Fatalf("Relate = %v, %v", rel, err)
	}
}

func TestApplyRollsBackOnCallbackError(t *testing.T) {
	db := buildFig1c(t)
	boom := errors.New("boom")
	err := db.Apply(func(tx *Txn) error {
		tx.AddRect("C", 10, 10, 14, 14)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Apply = %v, want the callback error", err)
	}
	for _, n := range db.Names() {
		if n == "C" {
			t.Fatal("rolled-back region C is visible")
		}
	}
}

func TestApplyRollsBackOnStagingError(t *testing.T) {
	db := buildFig1c(t)
	err := db.Apply(func(tx *Txn) error {
		tx.AddRect("C", 10, 10, 14, 14)
		tx.AddPolygon("bad", 0, 0, 1, 1) // two points: invalid, error ignored
		tx.AddRect("D", 20, 20, 24, 24)
		return nil
	})
	if err == nil {
		t.Fatal("Apply with an invalid staged region must fail")
	}
	for _, n := range db.Names() {
		if n == "C" || n == "D" {
			t.Fatalf("region %s from a failed Apply is visible", n)
		}
	}
	// Degenerate rectangle and empty name also fail staging.
	if db.Apply(func(tx *Txn) error { tx.AddRect("E", 0, 0, 0, 4); return nil }) == nil {
		t.Fatal("degenerate rect accepted")
	}
	if db.Apply(func(tx *Txn) error { tx.AddRect("", 0, 0, 4, 4); return nil }) == nil {
		t.Fatal("empty name accepted")
	}
}

func TestApplyEmptyIsNoop(t *testing.T) {
	db := buildFig1c(t)
	gen := db.Snapshot().Gen()
	if err := db.Apply(func(tx *Txn) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := db.Snapshot().Gen(); got != gen {
		t.Fatalf("empty Apply moved the generation %d -> %d", gen, got)
	}
}

func TestApplyReplacesExisting(t *testing.T) {
	db := buildFig1c(t)
	if err := db.Apply(func(tx *Txn) error {
		return tx.AddRect("B", 100, 100, 104, 104) // move B away from A
	}); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relate("A", "B")
	if err != nil || rel != Disjoint {
		t.Fatalf("Relate after replace = %v, %v", rel, err)
	}
	if n := len(db.Names()); n != 2 {
		t.Fatalf("replace grew the instance to %d regions", n)
	}
}
