// Topological inference example ([GPP95], the paper's §6): reasoning about
// 4-intersection constraint networks *without* any geometry — the
// existential fragment of the region language over the empty database.
package main

import (
	"fmt"

	"topodb/internal/fourint"
	"topodb/internal/infer"
)

func main() {
	// Facility placement: three zones with qualitative constraints.
	//   0 = Residential, 1 = Industrial, 2 = GreenBelt, 3 = School.
	names := []string{"Residential", "Industrial", "GreenBelt", "School"}
	nw := infer.NewNetwork(4)
	// Residential and Industrial must be separated (disjoint or meet).
	nw.Constrain(0, 1, infer.S(fourint.Disjoint, fourint.Meet))
	// The green belt surrounds the residential zone.
	nw.Constrain(0, 2, infer.S(fourint.Inside))
	// The school is inside the residential zone.
	nw.Constrain(3, 0, infer.S(fourint.Inside))

	fmt.Println("constraints:")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			fmt.Printf("  %-12s vs %-12s: %s\n", names[i], names[j], nw.Get(i, j))
		}
	}

	work := nw.Clone()
	if !work.PathConsistent() {
		fmt.Println("network is inconsistent")
		return
	}
	fmt.Println("after path consistency (composition-table pruning):")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			fmt.Printf("  %-12s vs %-12s: %s\n", names[i], names[j], work.Get(i, j))
		}
	}
	// Note: School inside Residential inside GreenBelt forces
	// School inside GreenBelt, and School vs Industrial is pruned to
	// disjoint (it cannot meet the industrial zone).

	if sc := nw.Solve(); sc != nil {
		fmt.Println("a consistent scenario:")
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				fmt.Printf("  %-12s %-10v %s\n", names[i], sc[i][j], names[j])
			}
		}
	}

	// An over-constrained variant is refuted.
	bad := nw.Clone()
	bad.Constrain(3, 1, infer.S(fourint.Overlap)) // school overlapping industry
	if bad.PathConsistent() {
		fmt.Println("unexpected: contradictory network passed")
	} else {
		fmt.Println("adding 'School overlaps Industrial' is refuted (as it must be)")
	}
}
