// GIS example: a small county map. Topological relationships (which
// counties border which, which contain which landmarks) are exactly the
// queries the paper's 4-intersection language was designed for in
// geographic information systems, and the thematic mapping stores the
// answers in a classical relational database.
package main

import (
	"fmt"
	"log"

	"topodb"
	"topodb/internal/reldb"
)

func main() {
	db := topodb.NewInstance()
	// A 3x2 mesh of counties sharing borders.
	names := []string{}
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 2; j++ {
			n := fmt.Sprintf("County%d%d", i, j)
			names = append(names, n)
			must(db.AddRect(n, 10*i, 10*j, 10*i+10, 10*j+10))
		}
	}
	// A park inside County00 and a river district overlapping two counties.
	must(db.AddRect("Park", 2, 2, 6, 6))
	must(db.AddRect("RiverDistrict", 7, 3, 14, 7))

	// Which counties meet (share a border)?
	rels, err := db.AllRelations()
	must(err)
	fmt.Println("borders (meet):")
	for i, a := range names {
		for _, b := range names[i+1:] {
			if rels[[2]string{a, b}] == topodb.Meet {
				fmt.Printf("  %s | %s\n", a, b)
			}
		}
	}
	fmt.Println("containment and overlap:")
	for _, a := range []string{"Park", "RiverDistrict"} {
		for _, b := range names {
			switch rels[[2]string{a, b}] {
			case topodb.Inside, topodb.CoveredBy:
				fmt.Printf("  %s is inside %s\n", a, b)
			case topodb.Overlap:
				fmt.Printf("  %s overlaps %s\n", a, b)
			}
		}
	}

	// The thematic problem (§3): precompute the invariant as a relational
	// database and answer topological queries with classical FO.
	th, err := db.Thematic()
	must(err)
	must(topodb.ValidateThematic(th))
	// "Is there a face inside both RiverDistrict and County10?"
	q := reldb.Exists{Var: "f", F: reldb.And{Fs: []reldb.Formula{
		reldb.Atom{Rel: "RegionFaces", Terms: []reldb.Term{reldb.C("RiverDistrict"), reldb.V("f")}},
		reldb.Atom{Rel: "RegionFaces", Terms: []reldb.Term{reldb.C("County10"), reldb.V("f")}},
	}}}
	ok, err := reldb.Eval(th, q)
	must(err)
	fmt.Printf("relational query on thematic(I): RiverDistrict ∩ County10 inhabited -> %v\n", ok)

	// Region-language query: does the river district bridge two counties?
	bridges, err := db.Query("overlap(RiverDistrict, County00) and overlap(RiverDistrict, County10)")
	must(err)
	fmt.Printf("river district bridges County00 and County10 -> %v\n", bridges)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
