// Quickstart: build a small spatial database, classify region relations,
// compute the topological invariant, and run region-based queries through
// the serving API (Apply, Snapshot, Prepare, Select).
package main

import (
	"context"
	"fmt"
	"log"

	"topodb"
)

func main() {
	db := topodb.NewInstance()
	// One Apply commits the whole scene atomically under a single lock
	// acquisition.
	must(db.Apply(func(tx *topodb.Txn) error {
		tx.AddRect("Lake", 0, 0, 10, 8)
		tx.AddRect("Island", 3, 3, 5, 5)  // inside the lake
		tx.AddRect("Harbor", 8, 2, 14, 6) // overlaps the lake shore
		tx.AddCircle("Buoy", 2, 2, 1, 12) // a disc inside the lake
		return nil
	}))

	// 4-intersection relations (Egenhofer).
	for _, pair := range [][2]string{{"Island", "Lake"}, {"Harbor", "Lake"}, {"Buoy", "Island"}} {
		rel, err := db.Relate(pair[0], pair[1])
		must(err)
		fmt.Printf("%-7s vs %-7s: %v\n", pair[0], pair[1], rel)
	}

	// The topological invariant: a complete summary for topological queries.
	inv, err := db.Invariant()
	must(err)
	v, e, f := inv.Stats()
	fmt.Printf("invariant: %d vertices, %d edges, %d faces (connected=%v)\n",
		v, e, f, inv.Connected())

	// Region-based queries (the paper's FO(Region, Region') language),
	// served as one batch on a pinned snapshot: the cached universe is
	// built once and the queries are evaluated concurrently. A failing
	// query would report its position without discarding the others.
	queries := []string{
		"inside(Island, Lake)",
		"some cell r: subset(r, Lake) and subset(r, Harbor)",
		"all name a: connect(a, a)",
		"some name a: some name b: (not a = b) and inside(a, b)",
	}
	snap := db.Snapshot()
	results, err := snap.QueryBatch(context.Background(), queries)
	must(err)
	for i, q := range queries {
		fmt.Printf("%-55s -> %v\n", q, results[i])
	}

	// Prepared queries parse once and re-evaluate on every generation;
	// Select returns the witnesses, not just a verdict.
	pq, err := db.Prepare("some name x: inside(x, Lake)")
	must(err)
	res, err := pq.Select(context.Background())
	must(err)
	fmt.Printf("inside the lake: %v\n", res.Names)

	// Topological equivalence: a stretched copy is homeomorphic.
	db2 := topodb.NewInstance()
	must(db2.AddRect("Lake", 0, 0, 100, 16))
	must(db2.AddRect("Island", 30, 6, 50, 10))
	must(db2.AddRect("Harbor", 80, 4, 140, 12))
	must(db2.AddCircle("Buoy", 20, 4, 2, 12))
	eq, err := topodb.Equivalent(db, db2)
	must(err)
	fmt.Printf("stretched copy topologically equivalent: %v\n", eq)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
