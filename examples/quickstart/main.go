// Quickstart: build a small spatial database, classify region relations,
// compute the topological invariant, and run region-based queries.
package main

import (
	"fmt"
	"log"

	"topodb"
)

func main() {
	db := topodb.NewInstance()
	must(db.AddRect("Lake", 0, 0, 10, 8))
	must(db.AddRect("Island", 3, 3, 5, 5))  // inside the lake
	must(db.AddRect("Harbor", 8, 2, 14, 6)) // overlaps the lake shore
	must(db.AddCircle("Buoy", 2, 2, 1, 12)) // a disc inside the lake

	// 4-intersection relations (Egenhofer).
	for _, pair := range [][2]string{{"Island", "Lake"}, {"Harbor", "Lake"}, {"Buoy", "Island"}} {
		rel, err := db.Relate(pair[0], pair[1])
		must(err)
		fmt.Printf("%-7s vs %-7s: %v\n", pair[0], pair[1], rel)
	}

	// The topological invariant: a complete summary for topological queries.
	inv, err := db.Invariant()
	must(err)
	v, e, f := inv.Stats()
	fmt.Printf("invariant: %d vertices, %d edges, %d faces (connected=%v)\n",
		v, e, f, inv.Connected())

	// Region-based queries (the paper's FO(Region, Region') language),
	// served as one batch: the cached universe is built once and the
	// queries are evaluated concurrently.
	queries := []string{
		"inside(Island, Lake)",
		"some cell r: subset(r, Lake) and subset(r, Harbor)",
		"all name a: connect(a, a)",
		"some name a: some name b: (not a = b) and inside(a, b)",
	}
	results, err := db.QueryBatch(queries)
	must(err)
	for i, q := range queries {
		fmt.Printf("%-55s -> %v\n", q, results[i])
	}

	// Topological equivalence: a stretched copy is homeomorphic.
	db2 := topodb.NewInstance()
	must(db2.AddRect("Lake", 0, 0, 100, 16))
	must(db2.AddRect("Island", 30, 6, 50, 10))
	must(db2.AddRect("Harbor", 80, 4, 140, 12))
	must(db2.AddCircle("Buoy", 20, 4, 2, 12))
	eq, err := topodb.Equivalent(db, db2)
	must(err)
	fmt.Printf("stretched copy topologically equivalent: %v\n", eq)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
