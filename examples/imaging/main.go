// Medical-imaging example: segmentation masks as regions. Topological
// invariants answer questions like "does the lesion touch the organ
// boundary?", "is the contrast region connected inside the organ?", and
// detect when two scans are topologically different even though every
// pairwise relation agrees — the paper's Fig 1 lesson in a clinical
// disguise.
package main

import (
	"fmt"
	"log"

	"topodb"
)

func main() {
	// Scan 1: organ with a single connected contrast region crossing it.
	scan1 := topodb.NewInstance()
	must(scan1.AddRect("Organ", 0, 0, 20, 12))
	must(scan1.AddRect("Lesion", 4, 4, 8, 8))
	must(scan1.AddRect("Contrast", 10, 2, 24, 10))

	// Scan 2: same pairwise relations, but the contrast dips into the
	// organ in two separate lobes (a U-shaped Rect* region).
	scan2 := topodb.NewInstance()
	must(scan2.AddRect("Organ", 0, 0, 20, 12))
	must(scan2.AddRect("Lesion", 4, 4, 8, 8))
	// Two horizontal lobes entering the organ (which ends at x = 20),
	// joined by a bridge that lies entirely outside it.
	must(scan2.AddRectUnion("Contrast",
		[4]int64{12, 2, 24, 5},
		[4]int64{12, 7, 24, 10},
		[4]int64{21, 2, 24, 10},
	))

	for name, scan := range map[string]*topodb.Instance{"scan1": scan1, "scan2": scan2} {
		rel, err := scan.Relate("Lesion", "Organ")
		must(err)
		rel2, err := scan.Relate("Contrast", "Organ")
		must(err)
		fmt.Printf("%s: lesion-vs-organ=%v contrast-vs-organ=%v\n", name, rel, rel2)
	}

	// Pairwise relations agree...
	same, err := topodb.FourIntersectionEquivalent(scan1, scan2)
	must(err)
	fmt.Printf("4-intersection equivalent: %v\n", same)
	// ...but the invariant distinguishes the scans.
	eq, err := topodb.Equivalent(scan1, scan2)
	must(err)
	fmt.Printf("topologically equivalent: %v\n", eq)

	// The separating query: is Contrast ∩ Organ connected?
	q := `all cell x: all cell y:
	  ((subset(x, Contrast) and subset(x, Organ)) and (subset(y, Contrast) and subset(y, Organ)))
	  implies (some region r: ((subset(r, Contrast) and subset(r, Organ)) and (connect(r, x) and connect(r, y))))`
	for name, scan := range map[string]*topodb.Instance{"scan1": scan1, "scan2": scan2} {
		ok, err := scan.Query(q)
		must(err)
		fmt.Printf("%s: contrast uptake inside organ is connected -> %v\n", name, ok)
	}

	// Safety check: the lesion must not touch the organ boundary.
	for name, scan := range map[string]*topodb.Instance{"scan1": scan1, "scan2": scan2} {
		ok, err := scan.Query("inside(Lesion, Organ)")
		must(err)
		fmt.Printf("%s: lesion strictly inside organ -> %v\n", name, ok)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
