package topodb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"topodb/internal/arrange"
	"topodb/internal/invariant"
	"topodb/internal/workload"
)

func chainInstance(t testing.TB, n int) *Instance {
	t.Helper()
	return wrap(workload.OverlapChain(n))
}

// TestCacheReusesArtifacts checks the singleflight memo actually shares
// structures: two Invariant calls on an unchanged instance return views of
// the same underlying T, and two Thematic calls the same DB.
func TestCacheReusesArtifacts(t *testing.T) {
	db := chainInstance(t, 6)
	iv1, err := db.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := db.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if iv1.Internal() != iv2.Internal() {
		t.Fatal("repeated Invariant() on an unchanged instance rebuilt T_I")
	}
	d1, err := db.Thematic()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := db.Thematic()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("repeated Thematic() on an unchanged instance rebuilt the DB")
	}
}

// TestCacheInvalidationOnMutation mutates after Invariant()/Query() and
// asserts every read path observes the new region.
func TestCacheInvalidationOnMutation(t *testing.T) {
	db := NewInstance()
	if err := db.AddRect("A", 0, 0, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRect("B", 2, 2, 6, 6); err != nil {
		t.Fatal(err)
	}
	iv1, err := db.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := db.Query("some cell r: subset(r, A) and subset(r, B)")
	if err != nil || !ok {
		t.Fatalf("warm-up query: %v, %v", ok, err)
	}
	if _, err := db.Query("overlap(A, C)"); err == nil {
		t.Fatal("query naming absent region C should fail before the mutation")
	}

	// Mutate: C overlaps A but not B.
	if err := db.AddRect("C", -2, -2, 1, 1); err != nil {
		t.Fatal(err)
	}

	iv2, err := db.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if iv1.Internal() == iv2.Internal() {
		t.Fatal("Invariant() after a mutation returned the stale cached T_I")
	}
	v1, e1, f1 := iv1.Stats()
	v2, e2, f2 := iv2.Stats()
	if v1 == v2 && e1 == e2 && f1 == f2 {
		t.Fatalf("stats unchanged after adding a region: (%d,%d,%d)", v2, e2, f2)
	}
	ok, err = db.Query("overlap(A, C)")
	if err != nil || !ok {
		t.Fatalf("post-mutation query must see C: %v, %v", ok, err)
	}
	rels, err := db.AllRelations()
	if err != nil {
		t.Fatal(err)
	}
	if rels[[2]string{"B", "C"}] != Disjoint {
		t.Fatalf("B vs C = %v, want disjoint", rels[[2]string{"B", "C"}])
	}

	// Replacing an existing region must also invalidate.
	if err := db.AddRect("C", 100, 100, 104, 104); err != nil {
		t.Fatal(err)
	}
	ok, err = db.Query("overlap(A, C)")
	if err != nil || ok {
		t.Fatalf("replaced C no longer overlaps A: %v, %v", ok, err)
	}
}

// TestConcurrentQueriesIdentical hammers one instance from many goroutines
// (run under -race in CI): all callers must agree, and the cache must hand
// every one of them the same underlying invariant.
func TestConcurrentQueriesIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4)) // real worker shards even on 1 CPU
	db := chainInstance(t, 8)
	queries := []string{
		"some cell r: subset(r, C000) and subset(r, C001)",
		"overlap(C000, C001)",
		"disjoint(C000, C007)",
		"meet(C002, C003)",
	}
	want, err := db.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([][]bool, goroutines)
	invs := make([]*invariant.T, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				res, err := db.QueryBatch(queries)
				results[g], errs[g] = res, err
			} else {
				res := make([]bool, len(queries))
				for i, q := range queries {
					ok, err := db.Query(q)
					if err != nil {
						errs[g] = err
						return
					}
					res[i] = ok
				}
				results[g] = res
			}
			iv, err := db.Invariant()
			if err != nil {
				errs[g] = err
				return
			}
			invs[g] = iv.Internal()
			_ = iv.Canonical()
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i := range queries {
			if results[g][i] != want[i] {
				t.Fatalf("goroutine %d query %d: got %v, want %v", g, i, results[g][i], want[i])
			}
		}
		if invs[g] != invs[0] {
			t.Fatalf("goroutine %d received a different invariant", g)
		}
	}
}

// TestConcurrentMutateAndQuery interleaves writers and readers; every read
// must reflect a consistent (pre- or post-mutation) state and never crash
// or return an error.
func TestConcurrentMutateAndQuery(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	db := NewInstance()
	if err := db.AddRect("A", 0, 0, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRect("B", 2, 2, 6, 6); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			x := int64(10 + 3*i)
			if err := db.AddRect("X", x, 0, x+2, 2); err != nil {
				t.Error(err)
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ok, err := db.Query("overlap(A, B)"); err != nil || !ok {
					t.Errorf("overlap(A, B): %v, %v", ok, err)
					return
				}
				if _, err := db.AllRelations(); err != nil {
					t.Error(err)
					return
				}
				for _, n := range db.Names() {
					if n == "" {
						t.Error("empty name observed during mutation")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCachedCanonicalMatchesSequential asserts the canonical invariant
// encoding from the cached, parallel path is byte-identical to a fresh
// sequential computation (GOMAXPROCS=1 forces every par helper onto the
// one-worker reference path).
func TestCachedCanonicalMatchesSequential(t *testing.T) {
	for _, mk := range map[string]func() *Instance{
		"overlap_chain": func() *Instance { return wrap(workload.OverlapChain(16)) },
		"lens_stack":    func() *Instance { return wrap(workload.LensStack(10)) },
		"county_mesh":   func() *Instance { return wrap(workload.CountyMesh(3)) },
	} {
		old := runtime.GOMAXPROCS(4) // worker-pool path
		db := mk()
		iv, err := db.Invariant()
		if err != nil {
			runtime.GOMAXPROCS(old)
			t.Fatal(err)
		}
		parallel := iv.Canonical()

		runtime.GOMAXPROCS(1) // sequential reference path
		seq, err := invariant.New(mk().Internal())
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		if got := seq.Canonical(); got != parallel {
			t.Fatalf("canonical encodings diverge:\nparallel:   %s\nsequential: %s", parallel, got)
		}
	}
}

// TestQueryBatchMatchesSingle checks batch evaluation agrees with one-off
// Query calls, including on a refined universe.
func TestQueryBatchMatchesSingle(t *testing.T) {
	db := chainInstance(t, 6)
	queries := []string{
		"overlap(C000, C001)",
		"some cell r: subset(r, C000)",
		"disjoint(C000, C005)",
	}
	for _, k := range []int{0, 2} {
		batch, err := db.QueryBatchRefined(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			single, err := db.QueryRefined(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != single {
				t.Fatalf("k=%d query %d: batch %v, single %v", k, i, batch[i], single)
			}
		}
	}
}

// A waiter blocked on another requester's in-flight build must not inherit
// that winner's cancellation: when the winner's context fires mid-build,
// the slot is vacated and a waiter with a live context retries — becoming
// the next winner — instead of failing with a deadline that was never its
// own.
func TestWaiterRetriesAfterWinnersCancel(t *testing.T) {
	c := &genCache{entries: make(map[artifactKey]*cacheEntry)}
	key := artifactKey{kind: arrangementKind}
	winnerCtx, cancel := context.WithCancel(context.Background())
	winnerStarted := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := c.get(winnerCtx, key, func() (any, error) {
			close(winnerStarted)
			<-winnerCtx.Done()
			return nil, fmt.Errorf("build canceled: %w", winnerCtx.Err())
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("winner error = %v, want context.Canceled in chain", err)
		}
	}()
	<-winnerStarted

	waiterReady := make(chan struct{})
	go func() {
		defer wg.Done()
		close(waiterReady)
		v, err := c.get(context.Background(), key, func() (any, error) {
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("waiter got (%v, %v), want (42, nil) via retry", v, err)
		}
	}()
	<-waiterReady
	cancel()
	wg.Wait()
}

// A budget rejection must not poison its generation: the slot is vacated,
// so raising the budget and retrying the same snapshot rebuilds (asserted
// end-to-end in TestErrTooManyRegionsTyped; this pins the cache contract
// directly).
func TestBudgetErrorVacatesSlot(t *testing.T) {
	c := &genCache{entries: make(map[artifactKey]*cacheEntry)}
	key := artifactKey{kind: arrangementKind}
	calls := 0
	build := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("arrange: %w: over budget", arrange.ErrTooManyRegions)
		}
		return "built", nil
	}
	if _, err := c.get(context.Background(), key, build); !errors.Is(err, arrange.ErrTooManyRegions) {
		t.Fatalf("first get: %v, want ErrTooManyRegions", err)
	}
	v, err := c.get(context.Background(), key, build)
	if err != nil || v != "built" {
		t.Fatalf("second get after vacate: (%v, %v), want rebuilt value", v, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (slot vacated once)", calls)
	}
}
